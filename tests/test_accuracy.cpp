// Tests for a-priori error control (fmm/accuracy.hpp): the predicted
// envelope must bound the measured FMM-FFT error across Q — the paper's
// "specify the error a priori" property — and suggest_params must deliver
// plans meeting requested accuracies.
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/fmmfft.hpp"
#include "core/reference.hpp"
#include "dist/dfmmfft.hpp"
#include "fmm/accuracy.hpp"

namespace fmmfft::fmm {
namespace {

using Cd = std::complex<double>;

TEST(ErrorModel, PredictionsDecreaseGeometrically) {
  for (int q = 2; q < 24; ++q)
    EXPECT_GT(predict_rel_error(q), predict_rel_error(q + 1));
  EXPECT_NEAR(predict_rel_error(8) / predict_rel_error(9), convergence_ratio(), 1e-9);
}

TEST(ErrorModel, MinQForTargets) {
  EXPECT_LE(predict_rel_error(min_q_for(1e-6)), 1e-6);
  EXPECT_LE(predict_rel_error(min_q_for(1e-12)), 1e-12);
  EXPECT_GE(min_q_for(1e-12), min_q_for(1e-6));
  EXPECT_EQ(min_q_for(1e-30), 24);  // clamped
}

TEST(ErrorModel, FloorByPrecision) {
  EXPECT_LT(error_floor(true), error_floor(false));
  EXPECT_EQ(predict_rel_error(24, true), std::max(predict_rel_error(24), 2e-14));
}

TEST(ErrorModel, EnvelopeBoundsMeasuredError) {
  // Measured FMM-FFT error must sit below the predicted envelope for all Q.
  const index_t n = 1 << 14;
  std::vector<Cd> x(static_cast<std::size_t>(n)), ref(x.size());
  fill_uniform(x.data(), n, 99);
  core::exact_fft(n, x.data(), ref.data());
  for (int qq = 3; qq <= 20; ++qq) {
    Params prm{n, 64, 8, 3, qq};
    core::FmmFft<Cd> plan(prm);
    std::vector<Cd> got(x.size());
    plan.execute(x.data(), got.data());
    const double err = rel_l2_error(got.data(), ref.data(), n);
    // The plan honors the ambient FMMFFT_PRECISION, so bound against the
    // envelope of the active policy (CI runs a mixed leg of the suite).
    EXPECT_LT(err, predict_rel_error(qq, true, default_precision())) << "Q=" << qq;
  }
}

TEST(ErrorModel, MixedFloorAndMinQ) {
  // Mixed inherits the fp32 floor no matter how wide the shell is, and the
  // fp64 default is untouched by the precision-aware overloads.
  EXPECT_EQ(error_floor(true, Precision::Mixed), error_floor(false));
  EXPECT_EQ(error_floor(true, Precision::Fp64), error_floor(true));
  EXPECT_EQ(predict_rel_error(20, true, Precision::Mixed),
            std::max(predict_rel_error(20), error_floor(false)));
  EXPECT_EQ(predict_rel_error(20, true, Precision::Fp64), predict_rel_error(20, true));
  // Targets below the fp32 floor clamp Q instead of wasting terms the
  // narrow pipeline cannot convert into accuracy.
  EXPECT_LT(min_q_for(1e-12, true, Precision::Mixed), min_q_for(1e-12));
  EXPECT_EQ(min_q_for(1e-12, true, Precision::Mixed), min_q_for(error_floor(false)));
}

TEST(ErrorModel, EnvelopeBoundsMeasuredErrorMixed) {
  // The mixed envelope (geometric term clamped at the fp32 floor) must
  // bound the measured error of the fp32-translation pipeline for all Q.
  const index_t n = 1 << 14;
  std::vector<Cd> x(static_cast<std::size_t>(n)), ref(x.size());
  fill_uniform(x.data(), n, 99);
  core::exact_fft(n, x.data(), ref.data());
  for (int qq = 3; qq <= 20; ++qq) {
    Params prm{n, 64, 8, 3, qq};
    core::FmmFft<Cd> plan(prm, /*fuse_post=*/true, Precision::Mixed);
    std::vector<Cd> got(x.size());
    plan.execute(x.data(), got.data());
    const double err = rel_l2_error(got.data(), ref.data(), n);
    EXPECT_LT(err, predict_rel_error(qq, true, Precision::Mixed)) << "Q=" << qq;
  }
}

TEST(ErrorModel, MixedEnvelopeBoundsCanonicalShapes) {
  // Feasible-N analogues of the four canonical bench configs (Fig. 2/3/5
  // all run Q=16): same Q and device counts, trees scaled to n = 2^16.
  // Measured mixed error must sit inside the predicted mixed envelope.
  struct Shape { index_t p, ml; int b, g; };
  const Shape shapes[] = {
      {128, 16, 3, 2},  // 2xP100 fig2 analogue
      {64, 8, 3, 2},    // 2xK40c analogue
      {256, 32, 3, 8},  // 8xP100 large-N analogue
      {128, 8, 4, 8},   // 8xP100 small-N analogue
  };
  const index_t n = 1 << 16;
  std::vector<Cd> x(static_cast<std::size_t>(n)), ref(x.size());
  fill_uniform(x.data(), n, 2027);
  core::exact_fft(n, x.data(), ref.data());
  const double envelope = predict_rel_error(16, true, Precision::Mixed);
  for (const auto& s : shapes) {
    Params prm{n, s.p, s.ml, s.b, 16};
    prm.validate_distributed(s.g);
    dist::DistFmmFft<Cd> plan(prm, s.g, Precision::Mixed);
    std::vector<Cd> got(x.size());
    plan.execute(x.data(), got.data());
    const double err = rel_l2_error(got.data(), ref.data(), n);
    EXPECT_LT(err, envelope) << "P=" << s.p << " G=" << s.g;
  }
}

TEST(ErrorModel, SuggestParamsMeetsTarget) {
  // Suggest for the ambient precision policy (CI runs a mixed leg): the
  // run must land under the target, or under the clamped envelope when
  // the target sits below the active policy's floor.
  const Precision prec = default_precision();
  for (double eps : {1e-4, 1e-8, 1e-13}) {
    const index_t n = 1 << 14;
    Params prm = suggest_params(n, eps, 1, prec);
    EXPECT_TRUE(prm.is_admissible(1));
    std::vector<Cd> x(static_cast<std::size_t>(n)), got(x.size()), ref(x.size());
    fill_uniform(x.data(), n, 7);
    core::exact_fft(n, x.data(), ref.data());
    core::FmmFft<Cd> plan(prm);
    plan.execute(x.data(), got.data());
    const double bound = std::max(eps, predict_rel_error(prm.q, true, prec));
    EXPECT_LT(rel_l2_error(got.data(), ref.data(), n), bound) << "eps=" << eps;
  }
}

TEST(ErrorModel, SuggestParamsMixedClampsQ) {
  // A deep-accuracy target under Mixed clamps Q at the fp32 floor; the
  // precision-defaulted call keeps the legacy fp64 plan bit-for-bit.
  const index_t n = 1 << 14;
  const Params legacy = suggest_params(n, 1e-12);
  const Params mixed = suggest_params(n, 1e-12, 1, Precision::Mixed);
  EXPECT_EQ(legacy.q, min_q_for(1e-12));
  EXPECT_EQ(mixed.q, min_q_for(error_floor(false)));
  EXPECT_LT(mixed.q, legacy.q);
  // Targets above the floor are unaffected by the precision.
  EXPECT_EQ(suggest_params(n, 1e-4, 1, Precision::Mixed).q, suggest_params(n, 1e-4).q);
}

TEST(ErrorModel, SuggestParamsRespectsDeviceCount) {
  Params prm = suggest_params(1 << 16, 1e-10, 8);
  EXPECT_TRUE(prm.is_admissible(8));
  EXPECT_THROW(suggest_params(64, 1e-10, 8), Error);  // too small to split
}

}  // namespace
}  // namespace fmmfft::fmm
