// Tests for the §5 analysis module: v(L,B,G) identities, exact counts vs
// the engine's recorded stats (launch for launch), paper closed forms vs
// exact sums, roofline/Eq.-3 arithmetic, comm counts, and parameter search.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <map>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "fmm/engine.hpp"
#include "model/arch.hpp"
#include "model/counts.hpp"

namespace fmmfft::model {
namespace {

TEST(LevelSum, MatchesDirectSummation) {
  for (index_t g : {1, 2, 4, 8}) {
    for (int b = 2; b <= 6; ++b)
      for (int l = b + 1; l <= 12; ++l) {
        double direct = 0;
        for (int lev = b; lev < l; ++lev)
          direct += double(ceil_div(index_t(1) << lev, g));
        EXPECT_DOUBLE_EQ(level_sum(l, b, g), direct) << "l=" << l << " b=" << b << " g=" << g;
      }
  }
}

TEST(LevelSum, VTopBranches) {
  // B > log G: v = 2^B/G; B <= log G: v = B + 1 - log G.
  EXPECT_DOUBLE_EQ(v_top(3, 2), 4.0);       // 8/2
  EXPECT_DOUBLE_EQ(v_top(4, 1), 16.0);      // G=1
  EXPECT_DOUBLE_EQ(v_top(2, 4), 1.0);       // B = logG -> B+1-logG = 1
  EXPECT_DOUBLE_EQ(v_top(2, 8), 0.0);       // B < logG -> 2+1-3 = 0
}

TEST(ExactCounts, MatchEngineStatsLaunchForLaunch) {
  fmm::Params prm{1 << 14, 64, 4, 2, 8};
  const int c = 2;
  fmm::Engine<double> eng(prm, c);
  std::vector<std::complex<double>> x(static_cast<std::size_t>(prm.n));
  fill_uniform(x.data(), prm.n, 3);
  std::memcpy(eng.source_box(0), x.data(), sizeof(x[0]) * x.size());
  eng.run_single_node();

  std::map<std::string, fmm::StageStats> by_name;
  for (const auto& st : eng.stats())
    if (st.kernel != fmm::KernelClass::Copy) by_name[st.name] = st;

  auto counts = exact_fmm_counts(prm, c, 1);
  EXPECT_EQ(counts.size(), by_name.size());
  for (const auto& st : counts) {
    ASSERT_TRUE(by_name.count(st.name)) << st.name;
    EXPECT_DOUBLE_EQ(st.flops, by_name[st.name].flops) << st.name;
    EXPECT_DOUBLE_EQ(st.mem_scalars * sizeof(double), by_name[st.name].mem_bytes) << st.name;
    EXPECT_EQ(st.kernel, by_name[st.name].kernel) << st.name;
  }
}

TEST(ExactCounts, DistributedSplitsEvenly) {
  fmm::Params prm{1 << 16, 64, 8, 3, 8};
  for (int c : {1, 2}) {
    double total1 = 0, total4 = 0;
    for (const auto& st : exact_fmm_counts(prm, c, 1)) total1 += st.flops;
    for (const auto& st : exact_fmm_counts(prm, c, 4)) total4 += st.flops;
    // Per-device work at G=4 is a quarter of the G=1 work except the
    // base-level M2L/reduce which replicate; allow that slack.
    EXPECT_NEAR(total4, total1 / 4.0, total1 * 0.05) << "c=" << c;
  }
}

TEST(PaperClosedForms, TrackExactCounts) {
  // The paper's §5.1 flop expression (P-1 conventions, v(B,G) top-of-tree
  // handling) must stay within a few percent of the exact per-launch sums
  // for representative configurations.
  for (auto [n, p, ml, b] :
       {std::tuple<index_t, index_t, index_t, int>{1 << 16, 256, 8, 2},
        {1 << 18, 256, 16, 3}, {1 << 20, 512, 16, 3}, {1 << 20, 64, 64, 4}}) {
    fmm::Params prm{n, p, ml, b, 16};
    for (index_t g : {1, 2}) {
      if (!prm.is_admissible(g)) continue;
      double exact = 0;
      for (const auto& st : exact_fmm_counts(prm, 2, g)) exact += st.flops;
      double paper = paper_fmm_flops(prm, 2, g);
      EXPECT_NEAR(paper / exact, 1.0, 0.05) << prm.to_string() << " g=" << g;
    }
  }
}

TEST(PaperClosedForms, MopsDominantTermsTrackExact) {
  fmm::Params prm{1 << 20, 256, 16, 3, 16};
  double exact = 0;
  for (const auto& st : exact_fmm_counts(prm, 2, 2)) exact += st.mem_scalars;
  double paper = paper_fmm_mops(prm, 2, 2);
  EXPECT_NEAR(paper / exact, 1.0, 0.15);
  // Operator reads only add.
  EXPECT_GT(paper_fmm_mops(prm, 2, 2, true), paper);
}

TEST(CommCounts, MatchPaperExpressions) {
  fmm::Params prm{1 << 18, 128, 16, 3, 16};  // M=2^11, L=7
  auto cc = paper_fmm_comm(prm, 2, 2);
  const double c = 2, pm1 = 127, q = 16, ml = 16;
  EXPECT_DOUBLE_EQ(cc.s_halo, 2 * c * pm1 * ml);
  EXPECT_DOUBLE_EQ(cc.m_halo, 4 * c * (7 - 3) * pm1 * q);
  EXPECT_DOUBLE_EQ(cc.m_base, 8 * c * pm1 * q);
  EXPECT_DOUBLE_EQ(cc.total(), cc.s_halo + cc.m_halo + cc.m_base);
  // G = 1: no communication.
  EXPECT_DOUBLE_EQ(paper_fmm_comm(prm, 2, 1).total(), 0.0);
}

TEST(CommCounts, TinyComparedToFlops) {
  // §5.2's point: communication is vanishingly small vs computation.
  fmm::Params prm{1 << 24, 256, 64, 3, 16};
  double flops = paper_fmm_flops(prm, 2, 8);
  double comm = paper_fmm_comm(prm, 2, 8).total();
  EXPECT_LT(comm / flops, 1e-3);
}

TEST(Roofline, ComputeVsMemoryBound) {
  ArchParams a = p100_nvlink(2);
  // Compute bound: high intensity.
  EXPECT_NEAR(roofline_seconds(1e12, 1e9, a, true), 1e12 / a.gamma_d, 1e-9);
  // Memory bound: low intensity.
  EXPECT_NEAR(roofline_seconds(1e9, 1e12, a, true), 1e12 / a.beta_mem, 1e-6);
  // Single precision uses gamma_f.
  EXPECT_LT(roofline_seconds(1e12, 1e9, a, false), roofline_seconds(1e12, 1e9, a, true));
}

TEST(Roofline, LinkAndAllToAll) {
  ArchParams nv = p100_nvlink(8);
  EXPECT_NEAR(link_seconds(18e9, nv), 1.0 + nv.link_latency, 1e-6);
  // Copy-engine serialization: (G-1) sequential sends per device.
  EXPECT_NEAR(all_to_all_seconds(1e9, nv), 7 * (nv.link_latency + 1e9 / nv.link_bw), 1e-9);
  ArchParams shared = nv;
  shared.links_shared = true;
  shared.num_devices = 4;
  EXPECT_NEAR(all_to_all_seconds(1e9, shared), 12 * (nv.link_latency + 1e9 / nv.link_bw), 1e-9);
  EXPECT_DOUBLE_EQ(all_to_all_seconds(1e9, p100_nvlink(1)), 0.0);
}

TEST(ArchPresets, PaperParameters) {
  auto k = k40c_pcie(2);
  EXPECT_DOUBLE_EQ(k.gamma_f, 2.8e12);   // §5.4
  EXPECT_DOUBLE_EQ(k.gamma_d, 1.2e12);
  EXPECT_DOUBLE_EQ(k.beta_mem, 100e9);
  EXPECT_LT(k.link_bw, 13.2e9);  // effective transpose rate < achieved peak
  auto p = p100_nvlink(8);
  EXPECT_DOUBLE_EQ(p.gamma_f, 10e12);    // §5.4
  EXPECT_DOUBLE_EQ(p.gamma_d, 5e12);
  EXPECT_DOUBLE_EQ(p.beta_mem, 360e9);
  EXPECT_DOUBLE_EQ(p.link_bw, 18e9);  // 36 GB/s aggregate bidirectional
  EXPECT_FALSE(p.links_shared);
  EXPECT_EQ(p.num_devices, 8);
  // P100 strictly outclasses K40 on every rate.
  EXPECT_GT(p.gamma_d, k.gamma_d);
  EXPECT_GT(p.beta_mem, k.beta_mem);
  EXPECT_GT(p.link_bw, k.link_bw);
}

TEST(TimeModel, FmmFftBeatsBaselineAtLargeN) {
  // The paper's headline: on 2xP100, large N, the FMM-FFT wins by ~1.3x;
  // on 8xP100 by ~2x. The model must reproduce those regimes.
  Workload w{1 << 27, true, true};
  auto arch2 = p100_nvlink(2);
  auto prm2 = search_best_params(w.n, 2, w, arch2, 16);
  double fmm2 = fmmfft_seconds(prm2, w, arch2, true);
  double base2 = baseline1d_seconds(w, arch2, true);
  EXPECT_GT(base2 / fmm2, 1.1) << "2xP100 speedup";
  EXPECT_LT(base2 / fmm2, 2.5);

  auto arch8 = p100_nvlink(8);
  auto prm8 = search_best_params(w.n, 8, w, arch8, 16);
  double fmm8 = fmmfft_seconds(prm8, w, arch8, true);
  double base8 = baseline1d_seconds(w, arch8, true);
  EXPECT_GT(base8 / fmm8, 1.4) << "8xP100 speedup";
}

TEST(TimeModel, SingleDeviceHasNoCommAdvantage) {
  // With G=1 there are no transposes to save; the plain FFT must win.
  Workload w{1 << 20, true, true};
  auto arch = p100_nvlink(1);
  auto prm = search_best_params(w.n, 1, w, arch, 16);
  EXPECT_GT(fmmfft_seconds(prm, w, arch, true), baseline1d_seconds(w, arch, true));
}

TEST(TimeModel, ModelBoundIsFasterThanEfficiencyAdjusted) {
  Workload w{1 << 24, true, true};
  auto arch = p100_nvlink(2);
  fmm::Params prm{1 << 24, 256, 64, 3, 16};
  EXPECT_LT(fmm_stage_seconds(prm, w, arch, false), fmm_stage_seconds(prm, w, arch, true));
  EXPECT_LT(fft2d_seconds(prm, w, arch, false), fft2d_seconds(prm, w, arch, true) + 1e-12);
}

TEST(TimeModel, CrossoverRatioMagnitude) {
  // §6: the model intensity of the FMM-FFT in this regime is ~7.8 flop/byte
  // double precision, so the P100 stage sits below the compute roof.
  Workload w{1 << 27, true, true};
  fmm::Params prm{1 << 27, 256, 64, 3, 16};
  auto arch = p100_nvlink(2);
  double wf = paper_fmm_flops(prm, 2, 2);
  double d = paper_fmm_mops(prm, 2, 2) * 8.0;
  double intensity = wf / d;
  EXPECT_GT(intensity, 4.0);
  EXPECT_LT(intensity, 16.0);
  double ratio = crossover_ratio(prm, w, arch);
  EXPECT_GT(ratio, 0.0);
  EXPECT_LT(ratio, 0.1);
}

TEST(Search, ReturnsAdmissibleAndStable) {
  Workload w{1 << 20, true, true};
  auto arch = p100_nvlink(2);
  auto prm = search_best_params(w.n, 2, w, arch, 16);
  EXPECT_TRUE(prm.is_admissible(2));
  EXPECT_EQ(prm.n, 1 << 20);
  // Deterministic.
  auto prm2 = search_best_params(w.n, 2, w, arch, 16);
  EXPECT_EQ(prm.p, prm2.p);
  EXPECT_EQ(prm.ml, prm2.ml);
  EXPECT_EQ(prm.b, prm2.b);
}

TEST(Search, ThrowsWhenNoParams) {
  Workload w{8, true, true};
  auto arch = p100_nvlink(2);
  EXPECT_THROW(search_best_params(8, 2, w, arch, 16), Error);
}

TEST(Workload, ElementBytes) {
  EXPECT_DOUBLE_EQ((Workload{4, true, true}.element_bytes()), 16.0);
  EXPECT_DOUBLE_EQ((Workload{4, false, false}.element_bytes()), 4.0);
  EXPECT_EQ((Workload{4, true, false}.c()), 2);
  EXPECT_EQ((Workload{4, false, true}.c()), 1);
}

}  // namespace
}  // namespace fmmfft::model
