// Tests for the 3D FFT plan.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/plan3d.hpp"

namespace fmmfft::fft {
namespace {

using Cd = std::complex<double>;

/// Brute-force separable reference: 1D reference DFTs along each axis.
std::vector<Cd> reference_3d(std::vector<Cd> x, index_t n0, index_t n1, index_t n2) {
  std::vector<Cd> line, out;
  for (index_t k = 0; k < n2; ++k)
    for (index_t j = 0; j < n1; ++j) {
      line.assign(x.begin() + j * n0 + k * n0 * n1, x.begin() + (j + 1) * n0 + k * n0 * n1);
      out.resize(line.size());
      dft_reference(line.data(), out.data(), n0);
      std::copy(out.begin(), out.end(), x.begin() + j * n0 + k * n0 * n1);
    }
  for (index_t k = 0; k < n2; ++k)
    for (index_t i = 0; i < n0; ++i) {
      line.resize((std::size_t)n1);
      for (index_t j = 0; j < n1; ++j) line[(std::size_t)j] = x[(std::size_t)(i + j * n0 + k * n0 * n1)];
      out.resize(line.size());
      dft_reference(line.data(), out.data(), n1);
      for (index_t j = 0; j < n1; ++j) x[(std::size_t)(i + j * n0 + k * n0 * n1)] = out[(std::size_t)j];
    }
  for (index_t j = 0; j < n1; ++j)
    for (index_t i = 0; i < n0; ++i) {
      line.resize((std::size_t)n2);
      for (index_t k = 0; k < n2; ++k) line[(std::size_t)k] = x[(std::size_t)(i + j * n0 + k * n0 * n1)];
      out.resize(line.size());
      dft_reference(line.data(), out.data(), n2);
      for (index_t k = 0; k < n2; ++k) x[(std::size_t)(i + j * n0 + k * n0 * n1)] = out[(std::size_t)k];
    }
  return x;
}

TEST(Plan3D, MatchesSeparableReference) {
  for (auto [n0, n1, n2] : {std::tuple<index_t, index_t, index_t>{8, 4, 2},
                            {4, 8, 16}, {16, 16, 16}, {3, 5, 7}}) {
    std::vector<Cd> x(static_cast<std::size_t>(n0 * n1 * n2));
    fill_uniform(x.data(), (index_t)x.size(), n0 + n1 + n2);
    auto ref = reference_3d(x, n0, n1, n2);
    Plan3D<double> plan(n0, n1, n2);
    plan.execute(x.data(), Direction::Forward);
    EXPECT_LT(rel_l2_error(x.data(), ref.data(), (index_t)x.size()), 1e-12)
        << n0 << "x" << n1 << "x" << n2;
  }
}

TEST(Plan3D, RoundTrip) {
  const index_t n0 = 8, n1 = 16, n2 = 4;
  std::vector<Cd> x(static_cast<std::size_t>(n0 * n1 * n2));
  fill_uniform(x.data(), (index_t)x.size(), 9);
  auto orig = x;
  Plan3D<double> plan(n0, n1, n2);
  plan.execute(x.data(), Direction::Forward);
  plan.execute(x.data(), Direction::Inverse);
  normalize(x.data(), (index_t)x.size(), n0 * n1 * n2);
  EXPECT_LT(rel_l2_error(x.data(), orig.data(), (index_t)x.size()), 1e-13);
  EXPECT_EQ(plan.size0(), n0);
  EXPECT_EQ(plan.size1(), n1);
  EXPECT_EQ(plan.size2(), n2);
}

TEST(Plan3D, SeparableImpulse) {
  // delta at origin -> constant 1 everywhere.
  const index_t n0 = 4, n1 = 4, n2 = 4;
  std::vector<Cd> x(static_cast<std::size_t>(n0 * n1 * n2), Cd(0));
  x[0] = Cd(1, 0);
  Plan3D<double> plan(n0, n1, n2);
  plan.execute(x.data(), Direction::Forward);
  for (auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-13);
    EXPECT_NEAR(v.imag(), 0.0, 1e-13);
  }
}

TEST(Plan3D, FloatVariant) {
  const index_t n0 = 8, n1 = 8, n2 = 8;
  std::vector<std::complex<float>> x(static_cast<std::size_t>(n0 * n1 * n2));
  fill_uniform(x.data(), (index_t)x.size(), 4);
  auto orig = x;
  Plan3D<float> plan(n0, n1, n2);
  plan.execute(x.data(), Direction::Forward);
  plan.execute(x.data(), Direction::Inverse);
  normalize(x.data(), (index_t)x.size(), n0 * n1 * n2);
  EXPECT_LT(rel_l2_error(x.data(), orig.data(), (index_t)x.size()), 1e-5);
}

TEST(Plan3D, RejectsEmptyDims) {
  EXPECT_THROW(Plan3D<double>(0, 4, 4), Error);
}

}  // namespace
}  // namespace fmmfft::fft
