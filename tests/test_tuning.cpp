// Tests for the persistent tuning cache.
#include <gtest/gtest.h>

#include <sstream>

#include "model/tuning.hpp"

namespace fmmfft::model {
namespace {

TEST(TuningCache, StoreLookupRoundTrip) {
  TuningCache cache;
  TuningCache::Key key{1 << 20, 2, Scalar::C64, "2xP100-NVLink"};
  EXPECT_FALSE(cache.lookup(key).has_value());
  fmm::Params prm{1 << 20, 256, 16, 3, 16};
  cache.store(key, prm);
  auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->p, 256);
  EXPECT_EQ(hit->ml, 16);
  EXPECT_EQ(cache.size(), 1u);
  // A different precision is a different key.
  TuningCache::Key key2 = key;
  key2.scalar = Scalar::C32;
  EXPECT_FALSE(cache.lookup(key2).has_value());
}

TEST(TuningCache, SaveLoadPreservesRecords) {
  TuningCache cache;
  cache.store({1 << 16, 2, Scalar::C64, "2xP100-NVLink"}, {1 << 16, 128, 16, 3, 16});
  cache.store({1 << 18, 8, Scalar::C32, "8xP100-NVLink"}, {1 << 18, 256, 8, 3, 8});
  std::stringstream ss;
  cache.save(ss);
  TuningCache loaded;
  loaded.load(ss);
  EXPECT_EQ(loaded.size(), 2u);
  auto hit = loaded.lookup({1 << 18, 8, Scalar::C32, "8xP100-NVLink"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->p, 256);
  EXPECT_EQ(hit->b, 3);
}

TEST(TuningCache, LoadSkipsCommentsAndRejectsGarbage) {
  {
    std::stringstream ss("# header\n\n65536 2 c64 arch : 128 16 3 16\n");
    TuningCache cache;
    cache.load(ss);
    EXPECT_EQ(cache.size(), 1u);
  }
  {
    std::stringstream ss("not a record\n");
    TuningCache cache;
    EXPECT_THROW(cache.load(ss), Error);
  }
  {
    // Invalid parameters must be rejected at load time.
    std::stringstream ss("65536 2 c64 arch : 7 16 3 16\n");  // P=7 not pow2
    TuningCache cache;
    EXPECT_THROW(cache.load(ss), Error);
  }
}

TEST(TuningCache, RejectsMismatchedSize) {
  TuningCache cache;
  EXPECT_THROW(cache.store({1 << 20, 2, Scalar::C64, "a"}, fmm::Params{1 << 18, 256, 16, 3, 16}),
               Error);
}

TEST(TuningCache, CachedSearchHitsAfterFirstCall) {
  TuningCache cache;
  const Workload w{1 << 18, true, true};
  auto arch = p100_nvlink(2);
  auto first = search_best_params_cached(cache, w.n, 2, w, arch, 16);
  EXPECT_EQ(cache.size(), 1u);
  // Poison the cache to prove the second call is a pure lookup.
  fmm::Params marker{1 << 18, 64, 16, 3, 16};
  cache.store({w.n, 2, Scalar::C64, arch.name}, marker);
  auto second = search_best_params_cached(cache, w.n, 2, w, arch, 16);
  EXPECT_EQ(second.p, 64);
  EXPECT_TRUE(first.is_admissible(2));
}

}  // namespace
}  // namespace fmmfft::model
