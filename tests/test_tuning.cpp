// Tests for the persistent tuning cache.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "model/counts.hpp"
#include "model/tuning.hpp"

namespace fmmfft::model {
namespace {

TEST(TuningCache, StoreLookupRoundTrip) {
  TuningCache cache;
  TuningCache::Key key{1 << 20, 2, Scalar::C64, "2xP100-NVLink"};
  EXPECT_FALSE(cache.lookup(key).has_value());
  fmm::Params prm{1 << 20, 256, 16, 3, 16};
  cache.store(key, prm);
  auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->p, 256);
  EXPECT_EQ(hit->ml, 16);
  EXPECT_EQ(cache.size(), 1u);
  // A different precision is a different key.
  TuningCache::Key key2 = key;
  key2.scalar = Scalar::C32;
  EXPECT_FALSE(cache.lookup(key2).has_value());
}

TEST(TuningCache, SaveLoadPreservesRecords) {
  TuningCache cache;
  cache.store({1 << 16, 2, Scalar::C64, "2xP100-NVLink"}, {1 << 16, 128, 16, 3, 16});
  cache.store({1 << 18, 8, Scalar::C32, "8xP100-NVLink"}, {1 << 18, 256, 8, 3, 8});
  std::stringstream ss;
  cache.save(ss);
  TuningCache loaded;
  loaded.load(ss);
  EXPECT_EQ(loaded.size(), 2u);
  auto hit = loaded.lookup({1 << 18, 8, Scalar::C32, "8xP100-NVLink"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->p, 256);
  EXPECT_EQ(hit->b, 3);
}

TEST(TuningCache, LoadSkipsCommentsAndRejectsGarbage) {
  {
    std::stringstream ss("# header\n\n65536 2 c64 arch : 128 16 3 16\n");
    TuningCache cache;
    cache.load(ss);
    EXPECT_EQ(cache.size(), 1u);
  }
  {
    std::stringstream ss("not a record\n");
    TuningCache cache;
    EXPECT_THROW(cache.load(ss), Error);
  }
  {
    // Invalid parameters must be rejected at load time.
    std::stringstream ss("65536 2 c64 arch : 7 16 3 16\n");  // P=7 not pow2
    TuningCache cache;
    EXPECT_THROW(cache.load(ss), Error);
  }
}

TEST(TuningCache, RejectsMismatchedSize) {
  TuningCache cache;
  EXPECT_THROW(cache.store({1 << 20, 2, Scalar::C64, "a"}, fmm::Params{1 << 18, 256, 16, 3, 16}),
               Error);
}

TEST(TuningCache, CachedSearchHitsAfterFirstCall) {
  TuningCache cache;
  const Workload w{1 << 18, true, true};
  auto arch = p100_nvlink(2);
  auto first = search_best_params_cached(cache, w.n, 2, w, arch, 16);
  EXPECT_EQ(cache.size(), 1u);
  // Poison the cache to prove the second call is a pure lookup.
  fmm::Params marker{1 << 18, 64, 16, 3, 16};
  cache.store({w.n, 2, Scalar::C64, arch.name}, marker);
  auto second = search_best_params_cached(cache, w.n, 2, w, arch, 16);
  EXPECT_EQ(second.p, 64);
  EXPECT_TRUE(first.is_admissible(2));
}

TEST(Decomp, ParseRoundTrip) {
  EXPECT_EQ(parse_decomp("auto"), Decomp::Auto);
  EXPECT_EQ(parse_decomp("slab"), Decomp::Slab);
  EXPECT_EQ(parse_decomp("pencil"), Decomp::Pencil);
  EXPECT_THROW(parse_decomp("brick"), Error);
  EXPECT_STREQ(to_string(Decomp::Pencil), "pencil");
}

TEST(Decomp, ParseGrid) {
  EXPECT_EQ(parse_grid("2x4"), (GridShape{2, 4}));
  EXPECT_EQ(parse_grid("16X1"), (GridShape{16, 1}));
  EXPECT_THROW(parse_grid("2x"), Error);
  EXPECT_THROW(parse_grid("x4"), Error);
  EXPECT_THROW(parse_grid("0x4"), Error);
  EXPECT_THROW(parse_grid("2x4x8"), Error);
  EXPECT_THROW(parse_grid("grid"), Error);
}

TEST(Decomp, DefaultGridIsSquarest) {
  EXPECT_EQ(default_grid(1), (GridShape{1, 1}));
  EXPECT_EQ(default_grid(4), (GridShape{2, 2}));
  EXPECT_EQ(default_grid(8), (GridShape{2, 4}));
  EXPECT_EQ(default_grid(16), (GridShape{4, 4}));
  EXPECT_EQ(default_grid(7), (GridShape{1, 7}));
}

TEST(Decomp, DefaultGrid3dRespectsDivisibility) {
  // 16 devices on a 64^3 grid: 4x4 divides everything.
  EXPECT_EQ(default_grid3d(16, 64, 64, 64), (GridShape{4, 4}));
  // n2 = 8 forces pr <= 8; squarest feasible for g = 32 on 16x64x8 needs
  // pr | 8 and pc | 16: 4x8 works (pr=4 ≤ 8, pc=8 ≤ 16, n1 % both == 0).
  const GridShape gs = default_grid3d(32, 16, 64, 8);
  EXPECT_TRUE(pencil_feasible_3d(16, 64, 8, gs));
  // Infeasible everywhere -> unspecified.
  EXPECT_FALSE(default_grid3d(16, 2, 2, 2).specified());
}

TEST(Decomp, ChooseForcedAndInfeasibleThrows) {
  const Workload w{64 * 64 * 64, true, true};
  const auto arch = p100_nvlink(8);
  auto d = choose_decomp(Decomp::Pencil, {2, 4}, 64, 64, 64, 8, w, arch);
  EXPECT_EQ(d.chosen, Decomp::Pencil);
  EXPECT_EQ(d.grid, (GridShape{2, 4}));
  EXPECT_FALSE(d.model_decided);
  // Forcing an infeasible layout is a hard error, not a silent fallback.
  EXPECT_THROW(choose_decomp(Decomp::Pencil, {3, 3}, 64, 64, 64, 8, w, arch), Error);
  EXPECT_THROW(choose_decomp(Decomp::Slab, {}, 64, 64, 63, 8, w, arch), Error);
}

TEST(Decomp, AutoPicksPencilBeyondCrossover) {
  // In 3D a 1x2 "pencil" at G = 2 moves the same exchange bytes as the slab
  // but folds the local i0<->i1 reorientation into its row hop, so the
  // model prices it strictly cheaper — no tie to break (the 2D decision,
  // which compares the exchange alone, does tie and goes to slab; see
  // Choose2dPrefersSlabAtSmallG). At G = 16 the 4x4 grid wins outright.
  const Workload w{64 * 64 * 64, true, true};
  auto d2 = choose_decomp(Decomp::Auto, {}, 64, 64, 64, 2, w, p100_nvlink(2));
  EXPECT_TRUE(d2.model_decided);
  EXPECT_EQ(d2.chosen, Decomp::Pencil);
  EXPECT_EQ(d2.grid, (GridShape{1, 2}));
  EXPECT_LT(d2.pencil_seconds, d2.slab_seconds);
  auto d16 = choose_decomp(Decomp::Auto, {}, 64, 64, 64, 16, w, p100_nvlink(16));
  EXPECT_EQ(d16.chosen, Decomp::Pencil);
  EXPECT_EQ(d16.grid, (GridShape{4, 4}));
  EXPECT_LT(d16.pencil_seconds, d16.slab_seconds);
}

TEST(Decomp, AutoFallsBackWhenOnlyOneFeasible) {
  const Workload w{16 * 64 * 8, true, true};
  // g = 32 > n2 = 8: slab infeasible, pencil must carry it.
  auto d = choose_decomp(Decomp::Auto, {}, 16, 64, 8, 32, w, p100_nvlink(32));
  EXPECT_EQ(d.chosen, Decomp::Pencil);
  EXPECT_FALSE(d.slab_feasible);
  // Nothing feasible at all -> hard error.
  EXPECT_THROW(choose_decomp(Decomp::Auto, {}, 2, 2, 2, 16, w, p100_nvlink(16)), Error);
}

TEST(Decomp, PencilTradesMessageCountForBytes) {
  // The pencil exchange's per-device volume is 2·(√G-1)/√G·N/G — up to 2×
  // the slab's (G-1)/G·N/G, each element moving twice. What it buys is the
  // partner count: 2(√G-1) messages of N/(G·√G) elements instead of G-1
  // messages of N/G² — so on a latency-bearing link the two-phase exchange
  // is modeled faster once G outgrows the crossover.
  const double n = 1 << 24, eb = 16.0;
  for (int g : {4, 16, 64}) {
    const int s = int(std::sqrt(double(g)));
    const double slab = slab_a2a_bytes_per_device(n, eb, g);
    const double pencil = pencil_a2a_bytes_per_device(n, eb, s, s);
    EXPECT_DOUBLE_EQ(pencil, 2.0 * double(s - 1) / double(s) * n / double(g) * eb)
        << "g=" << g;
    EXPECT_LE(pencil, 2.0 * slab * double(g) / double(g - 1)) << "g=" << g;
    // Latency-dominated regime: (G-1) serialized launches lose to 2(√G-1).
    ArchParams arch = p100_nvlink(g);
    arch.link_latency = 1e-3;  // exaggerate so bandwidth terms vanish
    EXPECT_LT(pencil_a2a_seconds(n, eb, s, s, arch), slab_a2a_seconds(n, eb, arch))
        << "g=" << g;
  }
}

TEST(Decomp, Choose2dAutoKeepsSlabPencilIsExplicit) {
  // 2D Auto is bytes-first: the factorized exchange doubles wire bytes for
  // the same permutation, so only an explicit request selects it — even at
  // tiny N where its latency profile would win on the modeled link.
  const Workload w{1 << 16, true, true};
  for (int g : {2, 4, 16}) {
    auto d = choose_decomp_2d(Decomp::Auto, {}, 256, 256, g, w, p100_nvlink(g));
    EXPECT_EQ(d.chosen, Decomp::Slab) << "g=" << g;
    EXPECT_TRUE(d.model_decided);
    EXPECT_GT(d.pencil_seconds, 0.0) << "both variants still priced";
  }
  auto forced = choose_decomp_2d(Decomp::Pencil, {2, 2}, 256, 256, 4, w, p100_nvlink(4));
  EXPECT_EQ(forced.chosen, Decomp::Pencil);
  EXPECT_EQ(forced.grid, (GridShape{2, 2}));
}

}  // namespace
}  // namespace fmmfft::model
